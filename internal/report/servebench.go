package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ServeBench is the machine-readable load-benchmark document for the
// scheduling server (BENCH_serve.json): plans/sec and tail latency of
// noctestd under a burst of concurrent mixed-benchmark requests, one
// phase per cache regime, committed next to BENCH_schedule.json so the
// serving trajectory is diffable across PRs the same way the engine
// trajectory is.
type ServeBench struct {
	// Seed drives every request's portfolio searches.
	Seed int64 `json:"seed"`
	// GOMAXPROCS records the host parallelism the figures were taken at;
	// plans/sec scales with it, so rows from different machines are not
	// directly comparable.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the server's bounded scheduling pool (concurrent
	// portfolio runs); QueueDepth the extra requests it parks before
	// answering 429.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Concurrency is the number of in-flight client requests the burst
	// holds open; Requests the total per phase.
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	// Search names the per-request portfolio preset measured ("quick" or
	// "full"); Mix the benchmark rotation of the burst.
	Search string   `json:"search"`
	Mix    []string `json:"mix"`
	// Phases holds one entry per cache regime, cold first.
	Phases []ServePhase `json:"phases"`
}

// ServePhase is one burst's outcome under one cache regime.
type ServePhase struct {
	// Phase is "cold" (the cache is bypassed, so every request pays
	// parse+build+compile, the cost an empty cache would charge it) or
	// "warm" (every request hits the pre-warmed model cache).
	Phase string `json:"phase"`
	// OK counts 2xx responses; Rejected429 the backpressure rejections
	// still terminal after the client's retry budget; Errors everything
	// else (must be zero in a healthy run). Retries counts the
	// re-sent attempts the retrying client spent absorbing transient
	// 429/5xx answers within the phase.
	OK          int `json:"ok"`
	Rejected429 int `json:"rejected_429"`
	Errors      int `json:"errors"`
	Retries     int `json:"retries"`
	// PlansPerSecond is completed plans over the burst's wall time.
	PlansPerSecond float64 `json:"plans_per_second"`
	// Latency quantiles of successful requests, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// WallMs is the whole burst's wall time.
	WallMs float64 `json:"wall_ms"`
	// Compiles is how many model compilations the server performed
	// during the phase: one per request in the cold regime, zero in the
	// warm one — the direct evidence warm requests skip Compile.
	Compiles uint64 `json:"compiles"`
	// CacheHits and CacheMisses are the server's cache counters over the
	// phase (bypassed cold requests count as neither).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// LatencyQuantiles computes the (p50, p90, p99, max) of a latency
// sample, in milliseconds. The slice is sorted in place; an empty
// sample returns zeros.
func LatencyQuantiles(samples []time.Duration) (p50, p90, p99, max float64) {
	if len(samples) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) float64 {
		// Nearest-rank on the sorted sample: the smallest value with at
		// least q of the mass at or below it, the standard conservative
		// percentile for latency reporting.
		i := int(q*float64(len(samples))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return float64(samples[i]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.90), at(0.99), float64(samples[len(samples)-1]) / float64(time.Millisecond)
}

// WriteJSON renders the document with stable indentation so diffs stay
// readable in version control.
func (b *ServeBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Summary renders a one-line-per-phase human summary for logs.
func (b *ServeBench) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serve bench: %d requests x %d concurrent (%s portfolio, mix %s, workers=%d queue=%d)\n",
		b.Requests, b.Concurrency, b.Search, strings.Join(b.Mix, ","), b.Workers, b.QueueDepth)
	for _, ph := range b.Phases {
		fmt.Fprintf(&sb, "  %-5s %8.1f plans/s  p50 %7.2fms  p99 %7.2fms  max %7.2fms  (%d ok, %d x 429, %d errors, %d compiles)\n",
			ph.Phase, ph.PlansPerSecond, ph.P50Ms, ph.P99Ms, ph.MaxMs, ph.OK, ph.Rejected429, ph.Errors, ph.Compiles)
	}
	return sb.String()
}
