package report

import (
	"context"
	"fmt"
	"strings"

	"noctest/internal/core"
	"noctest/internal/itc02"
	"noctest/internal/soc"
)

// GridSpec describes a batch portfolio sweep: every benchmark crossed
// with every power fraction, reuse count and link mode.
type GridSpec struct {
	// Benchmarks lists the systems to sweep; nil selects all embedded
	// benchmarks.
	Benchmarks []string
	// Processor names the reused processor profile; empty selects leon.
	Processor string
	// PowerFractions lists power ceilings as fractions of total core
	// power, 0 meaning unconstrained; nil selects {0, 0.5}.
	PowerFractions []float64
	// ReuseCounts lists processor reuse counts, 0 meaning no reuse and
	// -1 meaning every processor; nil selects {0, -1}.
	ReuseCounts []int
	// ExclusiveLinks lists the link modes: false is the paper's
	// packet-switched transport, true reserves links per test; nil
	// selects {false, true}.
	ExclusiveLinks []bool
	// BISTFactor is the pattern inflation for processor-driven tests;
	// values below 1 select PaperBISTFactor.
	BISTFactor float64
	// Topology selects the NoC fabric the systems are built on: "" or
	// "mesh" (the paper's), or "torus".
	Topology string
	// FailedLinks, when positive, fails that many NoC channels per
	// system (sampled deterministically from FailedLinkSeed), sweeping
	// the grid on a degraded fabric.
	FailedLinks    int
	FailedLinkSeed int64
}

func (g GridSpec) withDefaults() GridSpec {
	if len(g.Benchmarks) == 0 {
		g.Benchmarks = itc02.BenchmarkNames()
	}
	if g.Processor == "" {
		g.Processor = "leon"
	}
	if len(g.PowerFractions) == 0 {
		g.PowerFractions = []float64{0, PaperPowerFraction}
	}
	if len(g.ReuseCounts) == 0 {
		g.ReuseCounts = []int{0, -1}
	}
	if len(g.ExclusiveLinks) == 0 {
		g.ExclusiveLinks = []bool{false, true}
	}
	if g.BISTFactor < 1 {
		g.BISTFactor = PaperBISTFactor
	}
	return g
}

// GridRow is one cell of a portfolio sweep.
type GridRow struct {
	// Benchmark, Power, Reuse and Exclusive identify the cell.
	Benchmark string
	Power     float64
	Reuse     int // -1 means all processors
	Exclusive bool
	// Topology describes the cell's NoC fabric.
	Topology string
	// Makespan is the portfolio's winning test time.
	Makespan int
	// Greedy is the paper's single-variant baseline
	// (greedy/processors-first) on the same cell.
	Greedy int
	// Best names the winning scheduler.
	Best string
	// Gain is the fractional improvement of the portfolio over the
	// greedy baseline.
	Gain float64
}

// Label renders the cell's identity, e.g. "p22810/power=0.5/reuse=all/circuit".
func (r GridRow) Label() string {
	reuse := fmt.Sprintf("reuse=%d", r.Reuse)
	if r.Reuse < 0 {
		reuse = "reuse=all"
	}
	link := "packet"
	if r.Exclusive {
		link = "circuit"
	}
	return fmt.Sprintf("%s/power=%g/%s/%s", r.Benchmark, r.Power, reuse, link)
}

// RunPortfolioGrid schedules every cell of the grid concurrently with
// the portfolio engine and reports each cell's winner against the
// paper's greedy baseline. Each cell is compiled into one core.Model
// that every portfolio strategy — and the greedy baseline, when it must
// be rerun — replays. The first cell failure aborts the sweep.
func RunPortfolioGrid(ctx context.Context, g GridSpec, pf core.Portfolio) ([]GridRow, error) {
	g = g.withDefaults()
	profile, err := soc.ProfileByName(g.Processor)
	if err != nil {
		return nil, err
	}

	var jobs []core.BatchJob
	var rows []GridRow
	for _, benchName := range g.Benchmarks {
		bench, err := itc02.Benchmark(benchName)
		if err != nil {
			return nil, err
		}
		sys, err := soc.Build(bench, soc.BuildConfig{
			Processors:      PaperProcessors(benchName),
			Profile:         profile,
			Topology:        g.Topology,
			FailedLinkCount: g.FailedLinks,
			FailedLinkSeed:  g.FailedLinkSeed,
		})
		if err != nil {
			return nil, err
		}
		for _, power := range g.PowerFractions {
			for _, reuse := range g.ReuseCounts {
				for _, excl := range g.ExclusiveLinks {
					opts := core.Options{
						PowerLimitFraction: power,
						BISTPatternFactor:  g.BISTFactor,
						ExclusiveLinks:     excl,
					}
					switch {
					case reuse == 0:
						opts.DisableReuse = true
					case reuse > 0:
						opts.MaxReusedProcessors = reuse
					}
					row := GridRow{Benchmark: benchName, Power: power, Reuse: reuse, Exclusive: excl,
						Topology: sys.Net.Topo.String()}
					model, err := core.Compile(sys, opts)
					if err != nil {
						return nil, fmt.Errorf("report: compile %s: %w", row.Label(), err)
					}
					jobs = append(jobs, core.BatchJob{Label: row.Label(), Model: model})
					rows = append(rows, row)
				}
			}
		}
	}

	greedy := core.ListScheduler{Variant: core.GreedyFirstAvailable, Priority: core.ProcessorsFirst}
	results := pf.ScheduleAll(ctx, jobs)
	for i, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("report: %s: %w", res.Label, res.Err)
		}
		rows[i].Makespan = res.Result.Makespan()
		rows[i].Best = res.Result.Best
		// The paper's baseline is usually a member of the portfolio just
		// raced; only rerun it (on the same compiled model) when the
		// portfolio did not include it.
		baseline := 0
		for _, vr := range res.Result.Results {
			if vr.Scheduler == greedy.Name() && vr.Err == nil {
				baseline = vr.Makespan
				break
			}
		}
		if baseline == 0 {
			p, err := greedy.Schedule(ctx, jobs[i].Model)
			if err != nil {
				return nil, fmt.Errorf("report: %s greedy baseline: %w", res.Label, err)
			}
			baseline = p.Makespan()
		}
		rows[i].Greedy = baseline
		if rows[i].Greedy > 0 {
			rows[i].Gain = 1 - float64(rows[i].Makespan)/float64(rows[i].Greedy)
		}
	}
	return rows, nil
}

// RenderGrid renders the sweep as an aligned table.
func RenderGrid(rows []GridRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %-14s %12s %12s %7s  %s\n", "cell", "fabric", "greedy", "portfolio", "gain", "winner")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %-14s %12d %12d %6.1f%%  %s\n",
			r.Label(), r.Topology, r.Greedy, r.Makespan, 100*r.Gain, r.Best)
	}
	return b.String()
}
