// Package report runs the paper's experiments and renders their tables
// and figures: the six Figure 1 panels ({d695, p22810, p93791} x {Leon,
// Plasma}), the headline claims in the text, and the ablations DESIGN.md
// calls out.
package report

import (
	"fmt"
	"strings"

	"noctest/internal/core"
	"noctest/internal/itc02"
	"noctest/internal/plan"
	"noctest/internal/soc"
)

// Calibration constants for the paper reproduction. The paper assumes a
// processor produces one pattern in 10 cycles but does not publish the
// pattern-count penalty of its pseudo-random software BIST relative to
// the tester's deterministic patterns; a factor of 3 reproduces the
// magnitude of the paper's reported reductions (d695 ~28%, p93791 up to
// ~44%) against our calibrated benchmark data. See EXPERIMENTS.md.
const (
	// PaperBISTFactor is the pattern inflation applied to
	// processor-driven tests in the reproduction harness.
	PaperBISTFactor = 3.0
	// PaperPowerFraction is the constrained case of Figure 1.
	PaperPowerFraction = 0.5
)

// PanelSpec identifies one Figure 1 panel.
type PanelSpec struct {
	Benchmark  string // "d695", "p22810", "p93791"
	Processor  string // "leon", "plasma"
	Processors int    // processor instances in the system (paper: 6 or 8)
}

// PaperPanels lists the six panels of Figure 1 in paper order.
func PaperPanels() []PanelSpec {
	var specs []PanelSpec
	for _, proc := range []string{"leon", "plasma"} {
		for _, b := range []string{"d695", "p22810", "p93791"} {
			n := 8
			if b == "d695" {
				n = 6
			}
			specs = append(specs, PanelSpec{Benchmark: b, Processor: proc, Processors: n})
		}
	}
	return specs
}

// PanelOptions tunes the experiment; the zero value reproduces the
// paper's setup with the repository calibration.
type PanelOptions struct {
	// BISTFactor overrides PaperBISTFactor; values below 1 select it.
	BISTFactor float64
	// PowerFraction overrides PaperPowerFraction for the constrained
	// series; values outside (0, 1] select the paper's 0.5.
	PowerFraction float64
	// Variant and Priority select scheduler rules (defaults: the
	// paper's greedy first-available, processors first).
	Variant  core.Variant
	Priority core.Priority
	// Step is the processor-count stride of the sweep; zero selects the
	// paper's 2.
	Step int
}

func (o PanelOptions) withDefaults() PanelOptions {
	if o.BISTFactor < 1 {
		o.BISTFactor = PaperBISTFactor
	}
	if o.PowerFraction <= 0 || o.PowerFraction > 1 {
		o.PowerFraction = PaperPowerFraction
	}
	if o.Step <= 0 {
		o.Step = 2
	}
	return o
}

// Point is one x-position of a panel: both bars of the paper's chart.
type Point struct {
	// Processors reused for test (0 = the paper's "noproc").
	Processors int
	// NoLimit is the makespan without power constraint.
	NoLimit int
	// PowerLimited is the makespan under the power ceiling.
	PowerLimited int
}

// Panel is one reproduced chart of Figure 1.
type Panel struct {
	Spec   PanelSpec
	Opts   PanelOptions
	Points []Point
}

// Baseline returns the noproc makespan (unconstrained).
func (p Panel) Baseline() int {
	if len(p.Points) == 0 {
		return 0
	}
	return p.Points[0].NoLimit
}

// Reduction returns the fractional test-time reduction at the given
// point index, for the unconstrained or power-limited series.
func (p Panel) Reduction(index int, limited bool) float64 {
	base := p.Baseline()
	if base == 0 || index >= len(p.Points) {
		return 0
	}
	v := p.Points[index].NoLimit
	if limited {
		v = p.Points[index].PowerLimited
	}
	return 1 - float64(v)/float64(base)
}

// BestReduction returns the largest reduction over the series.
func (p Panel) BestReduction(limited bool) float64 {
	best := 0.0
	for i := range p.Points {
		if r := p.Reduction(i, limited); r > best {
			best = r
		}
	}
	return best
}

// NonMonotone reports whether the unconstrained series ever increases
// when more processors are reused — the paper's p22810 irregularity.
func (p Panel) NonMonotone() bool {
	for i := 1; i < len(p.Points); i++ {
		if p.Points[i].NoLimit > p.Points[i-1].NoLimit {
			return true
		}
	}
	return false
}

// RunPanel builds the panel's system once and sweeps the number of
// reused processors, scheduling each point with and without the power
// ceiling — exactly the procedure behind each chart of Figure 1.
func RunPanel(spec PanelSpec, opts PanelOptions) (Panel, error) {
	opts = opts.withDefaults()
	bench, err := itc02.Benchmark(spec.Benchmark)
	if err != nil {
		return Panel{}, err
	}
	profile, err := soc.ProfileByName(spec.Processor)
	if err != nil {
		return Panel{}, err
	}
	sys, err := soc.Build(bench, soc.BuildConfig{Processors: spec.Processors, Profile: profile})
	if err != nil {
		return Panel{}, err
	}

	panel := Panel{Spec: spec, Opts: opts}
	for procs := 0; procs <= spec.Processors; procs += opts.Step {
		schedOpts := core.Options{
			DisableReuse:        procs == 0,
			MaxReusedProcessors: procs,
			Variant:             opts.Variant,
			Priority:            opts.Priority,
			BISTPatternFactor:   opts.BISTFactor,
		}
		unconstrained, err := core.Schedule(sys, schedOpts)
		if err != nil {
			return Panel{}, fmt.Errorf("report: %s/%s %dproc: %w", spec.Benchmark, spec.Processor, procs, err)
		}
		schedOpts.PowerLimitFraction = opts.PowerFraction
		limited, err := core.Schedule(sys, schedOpts)
		if err != nil {
			return Panel{}, fmt.Errorf("report: %s/%s %dproc (power): %w", spec.Benchmark, spec.Processor, procs, err)
		}
		panel.Points = append(panel.Points, Point{
			Processors:   procs,
			NoLimit:      unconstrained.Makespan(),
			PowerLimited: limited.Makespan(),
		})
	}
	return panel, nil
}

// RunFigure1 reproduces all six panels with the paper calibration.
func RunFigure1() ([]Panel, error) {
	var panels []Panel
	for _, spec := range PaperPanels() {
		p, err := RunPanel(spec, PanelOptions{})
		if err != nil {
			return nil, err
		}
		panels = append(panels, p)
	}
	return panels, nil
}

// Render draws the panel as the paper draws it: grouped bars per
// processor count, one bar for the power-limited run and one without.
func (p Panel) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s_%s (%d processors present, %g power limit vs none)\n",
		p.Spec.Benchmark, p.Spec.Processor, p.Spec.Processors, p.Opts.PowerFraction)
	max := 0
	for _, pt := range p.Points {
		if pt.NoLimit > max {
			max = pt.NoLimit
		}
		if pt.PowerLimited > max {
			max = pt.PowerLimited
		}
	}
	if max == 0 {
		return b.String()
	}
	const width = 46
	for _, pt := range p.Points {
		label := fmt.Sprintf("%dproc", pt.Processors)
		if pt.Processors == 0 {
			label = "noproc"
		}
		fmt.Fprintf(&b, "  %-7s %s %8d  (50%% limit)\n", label, bar(pt.PowerLimited, max, width), pt.PowerLimited)
		fmt.Fprintf(&b, "  %-7s %s %8d  (no limit, -%0.0f%%)\n", "", bar(pt.NoLimit, max, width), pt.NoLimit,
			100*(1-float64(pt.NoLimit)/float64(p.Baseline())))
	}
	return b.String()
}

func bar(v, max, width int) string {
	n := v * width / max
	if n < 1 && v > 0 {
		n = 1
	}
	return strings.Repeat("#", n) + strings.Repeat(" ", width-n)
}

// Table renders the panel as aligned rows: processors, both series and
// the reductions, the machine-checkable counterpart of the chart.
func (p Panel) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system %s_%s\n", p.Spec.Benchmark, p.Spec.Processor)
	fmt.Fprintf(&b, "%8s %12s %10s %12s %10s\n", "reused", "no-limit", "reduction", "power-lim", "reduction")
	for i, pt := range p.Points {
		fmt.Fprintf(&b, "%8d %12d %9.1f%% %12d %9.1f%%\n",
			pt.Processors, pt.NoLimit, 100*p.Reduction(i, false),
			pt.PowerLimited, 100*p.Reduction(i, true))
	}
	return b.String()
}

// ScheduleForPoint re-runs the scheduler behind a panel point and
// returns the full plan, for drill-down inspection from the CLIs.
func ScheduleForPoint(spec PanelSpec, opts PanelOptions, procs int, limited bool) (*plan.Plan, error) {
	opts = opts.withDefaults()
	bench, err := itc02.Benchmark(spec.Benchmark)
	if err != nil {
		return nil, err
	}
	profile, err := soc.ProfileByName(spec.Processor)
	if err != nil {
		return nil, err
	}
	sys, err := soc.Build(bench, soc.BuildConfig{Processors: spec.Processors, Profile: profile})
	if err != nil {
		return nil, err
	}
	schedOpts := core.Options{
		DisableReuse:        procs == 0,
		MaxReusedProcessors: procs,
		Variant:             opts.Variant,
		Priority:            opts.Priority,
		BISTPatternFactor:   opts.BISTFactor,
	}
	if limited {
		schedOpts.PowerLimitFraction = opts.PowerFraction
	}
	return core.Schedule(sys, schedOpts)
}
