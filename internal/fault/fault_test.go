package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseOff(t *testing.T) {
	for _, spec := range []string{"", "off", "  off  ", "   "} {
		in, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if in != nil {
			t.Fatalf("Parse(%q) = %v, want nil injector", spec, in)
		}
	}
}

func TestParseSpec(t *testing.T) {
	in, err := Parse("seed=7; compile.err=0.2 ; compile.slow=0.1:25ms;sched.panic=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed() != 7 {
		t.Errorf("seed = %d, want 7", in.Seed())
	}
	got := in.String()
	want := "seed=7;compile.err=0.2;compile.slow=0.1:25ms;sched.panic=0.05"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	// Round-trip: the canonical form parses back to itself.
	in2, err := Parse(got)
	if err != nil {
		t.Fatal(err)
	}
	if in2.String() != got {
		t.Errorf("round-trip = %q, want %q", in2.String(), got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"compile.err",            // no value
		"compile.err=nope",       // bad probability
		"compile.err=1.5",        // out of range
		"compile.err=-0.1",       // out of range
		"compile.oops=0.5",       // unknown point: typos must not silently disable a drill
		"seed=abc",               // bad seed
		"compile.slow=0.5:xyz",   // bad duration argument
		"compile.slow=0.5:-10ms", // negative duration
	}
	for _, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

// TestDeterminism asserts the core contract: the nth decision at a
// point is a pure function of (seed, point, n), no matter how calls to
// other points interleave.
func TestDeterminism(t *testing.T) {
	draw := func(in *Injector, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = in.Should(CompileErr)
		}
		return out
	}
	a, _ := Parse("seed=42;compile.err=0.5;store.write=0.5")
	b, _ := Parse("seed=42;compile.err=0.5;store.write=0.5")
	// Interleave store.write draws on b only; compile.err's stream must
	// not shift.
	seqA := draw(a, 100)
	var seqB []bool
	for i := 0; i < 100; i++ {
		b.Should(StoreWrite)
		seqB = append(seqB, b.Should(CompileErr))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("decision %d diverged under cross-point interleaving: %v vs %v", i, seqA[i], seqB[i])
		}
	}
	// A different seed must give a different sequence (overwhelmingly).
	c, _ := Parse("seed=43;compile.err=0.5")
	seqC := draw(c, 100)
	same := 0
	for i := range seqA {
		if seqA[i] == seqC[i] {
			same++
		}
	}
	if same == len(seqA) {
		t.Error("seed=42 and seed=43 drew identical 100-decision sequences")
	}
}

func TestProbabilityEndpoints(t *testing.T) {
	in, _ := Parse("compile.err=1;store.write=0")
	for i := 0; i < 50; i++ {
		if !in.Should(CompileErr) {
			t.Fatal("probability 1 failed to fire")
		}
		if in.Should(StoreWrite) {
			t.Fatal("probability 0 fired")
		}
	}
	cs := in.Counts()
	if c := cs["compile.err"]; c.Checked != 50 || c.Fired != 50 {
		t.Errorf("compile.err counts = %+v, want 50/50", c)
	}
	if c := cs["store.write"]; c.Checked != 50 || c.Fired != 0 {
		t.Errorf("store.write counts = %+v, want 50/0", c)
	}
}

func TestDelay(t *testing.T) {
	in, _ := Parse("compile.slow=1:25ms;compile.err=1")
	if d, ok := in.Delay(CompileSlow); !ok || d != 25*time.Millisecond {
		t.Errorf("Delay(compile.slow) = %v, %v; want 25ms, true", d, ok)
	}
	// A delay point with no argument gets the 10ms default.
	if d, ok := in.Delay(CompileErr); !ok || d != 10*time.Millisecond {
		t.Errorf("Delay with no arg = %v, %v; want 10ms, true", d, ok)
	}
	// An absent point never delays.
	if _, ok := in.Delay(SchedPanic); ok {
		t.Error("Delay fired for a point absent from the spec")
	}
}

func TestSetProbability(t *testing.T) {
	in, _ := Parse("seed=5;compile.err=0")
	if in.Should(CompileErr) {
		t.Fatal("fired at probability 0")
	}
	in.SetProbability(CompileErr, 1)
	if !in.Should(CompileErr) {
		t.Fatal("did not fire after SetProbability(1)")
	}
	// Adding a point the spec never named works and clamps.
	in.SetProbability(StoreTorn, 7)
	if !in.Should(StoreTorn) {
		t.Fatal("added point with clamped probability 1 did not fire")
	}
	in.SetProbability(StoreTorn, -3)
	if in.Should(StoreTorn) {
		t.Fatal("clamped probability 0 fired")
	}
	if !strings.Contains(in.String(), "store.torn=0") {
		t.Errorf("String() = %q, want store.torn=0 entry", in.String())
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Should(CompileErr) {
		t.Error("nil injector fired")
	}
	if _, ok := in.Delay(CompileSlow); ok {
		t.Error("nil injector delayed")
	}
	in.SetProbability(CompileErr, 1) // must not panic
	if in.Seed() != 0 {
		t.Error("nil injector seed != 0")
	}
	if in.Counts() != nil {
		t.Error("nil injector counts != nil")
	}
	if in.String() != "off" {
		t.Errorf("nil injector String() = %q, want off", in.String())
	}
}

func TestErrorf(t *testing.T) {
	err := Errorf("store append %d", 3)
	if !errors.Is(err, ErrInjected) {
		t.Error("Errorf result does not wrap ErrInjected")
	}
	if !strings.Contains(err.Error(), "store append 3") {
		t.Errorf("message %q missing detail", err)
	}
}

func TestConcurrentDraws(t *testing.T) {
	// Hammer one injector from many goroutines; the race detector is
	// the assertion, plus counts must tally exactly.
	in, _ := Parse("seed=9;compile.err=0.5;store.write=0.5;sched.panic=0.5")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				in.Should(CompileErr)
				in.Should(StoreWrite)
				in.SetProbability(SchedPanic, 0.5)
				in.Should(SchedPanic)
				in.Counts()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	cs := in.Counts()
	if c := cs["compile.err"]; c.Checked != 8*500 {
		t.Errorf("compile.err checked = %d, want %d", c.Checked, 8*500)
	}
}
