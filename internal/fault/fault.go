// Package fault is a seeded, deterministic fault injector for the
// serving layer's robustness tests. An Injector owns a set of named
// failure points — places in the server where production has seen (or
// will see) things go wrong: a compile that errors, a compile that
// stalls, a scheduler that panics, a result-store write that fails, a
// journal record torn in half by a crash. Each point carries a firing
// probability drawn from its own seeded stream, so the nth decision at
// a point is a pure function of (seed, point, n) no matter how calls
// to *other* points interleave — a chaos run is reproducible from its
// seed alone.
//
// Injection is off by default everywhere: a nil *Injector is valid,
// answers "no" at every point for free, and is what production runs.
// Tests and chaos drills enable it with a spec string:
//
//	seed=7;compile.err=0.2;compile.slow=0.1:25ms;sched.panic=0.05;store.write=0.3
//
// Grammar: entries separated by ";" (whitespace around entries is
// ignored). "seed=N" sets the decision seed (default 1). Every other
// entry is "<point>=<probability>" with an optional ":<duration>"
// argument (used by delay points such as compile.slow). Probabilities
// are floats in [0, 1]; unknown point names are errors so a typo can
// never silently disable a drill. The empty string and "off" parse to
// a nil Injector.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one failure site threaded through the server.
type Point string

// The known failure points. Each names the operation that fails, not
// the symptom: the site decides what an injected failure looks like.
const (
	// CompileErr makes a model compile return an injected error
	// (wrapping ErrInjected) instead of running.
	CompileErr Point = "compile.err"
	// CompileSlow stalls a model compile for the point's duration
	// argument (default 10ms) before it runs.
	CompileSlow Point = "compile.slow"
	// SchedPanic adds a panicking strategy to a request's portfolio
	// race, exercising the engine's panic isolation.
	SchedPanic Point = "sched.panic"
	// StoreWrite makes a result-store append fail cleanly: nothing is
	// written, the store stays usable.
	StoreWrite Point = "store.write"
	// StoreTorn tears a result-store append in half — the journal gets
	// a partial record, as a crash mid-write would leave — and the
	// store considers its writer dead from then on.
	StoreTorn Point = "store.torn"
)

// Points lists every known failure point, in spec order.
var Points = []Point{CompileErr, CompileSlow, SchedPanic, StoreWrite, StoreTorn}

// ErrInjected marks an error as injected by a fault drill rather than
// produced by real work. Handlers classify injected failures as
// transient server errors (retryable 5xx), never as client errors.
var ErrInjected = errors.New("injected fault")

// Count is one point's telemetry: how many decisions were drawn and
// how many fired.
type Count struct {
	Checked uint64 `json:"checked"`
	Fired   uint64 `json:"fired"`
}

// pointState is one point's probability, optional argument, and seeded
// decision stream. The rng is guarded by mu: decisions at one point
// are serialized, which is what makes the nth decision deterministic.
type pointState struct {
	mu      sync.Mutex
	prob    float64
	arg     time.Duration
	rng     *rand.Rand
	checked uint64
	fired   uint64
}

// Injector draws seeded fault decisions at named points. The zero
// value is not useful; build one with Parse. A nil Injector is the
// production configuration: every method is nil-safe and inert.
type Injector struct {
	seed   int64
	mu     sync.RWMutex // guards the points map (SetProbability may grow it)
	points map[Point]*pointState
}

// state looks a point up under the read lock.
func (in *Injector) state(p Point) *pointState {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return in.points[p]
}

// Parse builds an Injector from a spec string. The empty string and
// "off" return (nil, nil): injection disabled.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	in := &Injector{seed: 1, points: make(map[Point]*pointState)}
	known := make(map[Point]bool, len(Points))
	for _, p := range Points {
		known[p] = true
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, value, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q is not name=value", entry)
		}
		name = strings.TrimSpace(name)
		value = strings.TrimSpace(value)
		if name == "seed" {
			s, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: invalid seed %q: %v", value, err)
			}
			in.seed = s
			continue
		}
		p := Point(name)
		if !known[p] {
			return nil, fmt.Errorf("fault: unknown point %q (have %s)", name, pointNames())
		}
		probStr, argStr, hasArg := strings.Cut(value, ":")
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: invalid probability %q for %s: want a float in [0, 1]", probStr, name)
		}
		st := &pointState{prob: prob}
		if hasArg {
			d, err := time.ParseDuration(argStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: invalid argument %q for %s: want a non-negative duration", argStr, name)
			}
			st.arg = d
		}
		in.points[p] = st
	}
	// Each point draws from its own stream, seeded by (seed, point), so
	// decision sequences are independent across points and reproducible
	// per point regardless of cross-point interleaving.
	for p, st := range in.points {
		h := fnv.New64a()
		h.Write([]byte(p))
		st.rng = rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
	}
	return in, nil
}

func pointNames() string {
	names := make([]string, len(Points))
	for i, p := range Points {
		names[i] = string(p)
	}
	return strings.Join(names, ", ")
}

// Should draws the point's next decision: true means the fault fires.
// A nil Injector, and a point absent from the spec, never fire.
func (in *Injector) Should(p Point) bool {
	if in == nil {
		return false
	}
	st := in.state(p)
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.checked++
	if st.prob <= 0 || st.rng.Float64() >= st.prob {
		return false
	}
	st.fired++
	return true
}

// Delay draws the point's next decision and, when it fires, returns
// the point's duration argument (10ms when the spec gave none).
func (in *Injector) Delay(p Point) (time.Duration, bool) {
	if !in.Should(p) {
		return 0, false
	}
	st := in.state(p)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.arg <= 0 {
		return 10 * time.Millisecond, true
	}
	return st.arg, true
}

// SetProbability replaces a point's firing probability at runtime —
// the lever tests and drills use to script phase changes ("now the
// store is gone": SetProbability(StoreWrite, 1)). Setting a point the
// spec did not name adds it with a fresh seeded stream. Values outside
// [0, 1] are clamped. Safe on a nil Injector (no-op).
func (in *Injector) SetProbability(p Point, prob float64) {
	if in == nil {
		return
	}
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	in.mu.Lock()
	st, ok := in.points[p]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(p))
		st = &pointState{rng: rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))}
		in.points[p] = st
	}
	in.mu.Unlock()
	st.mu.Lock()
	st.prob = prob
	st.mu.Unlock()
}

// Seed returns the injector's decision seed (0 for nil: no drill).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Counts returns per-point telemetry, keyed by point name. Nil
// injectors return nil.
func (in *Injector) Counts() map[string]Count {
	if in == nil {
		return nil
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make(map[string]Count, len(in.points))
	for p, st := range in.points {
		st.mu.Lock()
		out[string(p)] = Count{Checked: st.checked, Fired: st.fired}
		st.mu.Unlock()
	}
	return out
}

// String renders the injector back into canonical spec form (sorted
// points). A nil Injector renders "off".
func (in *Injector) String() string {
	if in == nil {
		return "off"
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	entries := []string{fmt.Sprintf("seed=%d", in.seed)}
	names := make([]string, 0, len(in.points))
	for p := range in.points {
		names = append(names, string(p))
	}
	sort.Strings(names)
	for _, name := range names {
		st := in.points[Point(name)]
		st.mu.Lock()
		e := fmt.Sprintf("%s=%g", name, st.prob)
		if st.arg > 0 {
			e += ":" + st.arg.String()
		}
		st.mu.Unlock()
		entries = append(entries, e)
	}
	return strings.Join(entries, ";")
}

// Errorf builds an error wrapping ErrInjected, so handlers can
// classify drill failures with errors.Is.
func Errorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInjected, fmt.Sprintf(format, args...))
}
