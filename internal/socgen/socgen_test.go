package socgen

import (
	"reflect"
	"strings"
	"testing"

	"noctest/internal/itc02"
)

// TestGenerateRoundTripsAndValidates drives the generator across a
// spread of seeds and sizes: every generated SoC must validate, survive
// the canonical write/parse round trip, and come back identical.
func TestGenerateRoundTripsAndValidates(t *testing.T) {
	for _, cores := range []int{1, 2, 7, 16, 40} {
		for seed := int64(0); seed < 12; seed++ {
			s := Generate(Params{Cores: cores, Seed: seed})
			if err := s.Validate(); err != nil {
				t.Fatalf("cores=%d seed=%d: invalid SoC: %v", cores, seed, err)
			}
			if len(s.Cores) != cores {
				t.Fatalf("cores=%d seed=%d: got %d cores", cores, seed, len(s.Cores))
			}
			text, err := itc02.WriteString(s)
			if err != nil {
				t.Fatalf("cores=%d seed=%d: write: %v", cores, seed, err)
			}
			again, err := itc02.ParseString(text)
			if err != nil {
				t.Fatalf("cores=%d seed=%d: reparse: %v", cores, seed, err)
			}
			if !reflect.DeepEqual(s, again) {
				t.Fatalf("cores=%d seed=%d: round trip changed the SoC", cores, seed)
			}
		}
	}
}

// TestGenerateDeterministic pins the draw to its seed.
func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Params{Cores: 10, Seed: 42})
	b := Generate(Params{Cores: 10, Seed: 42})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different SoCs")
	}
	c := Generate(Params{Cores: 10, Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical SoCs")
	}
}

// TestGenerateDistributionKnobs checks the parameterized distributions
// actually move the draws.
func TestGenerateDistributionKnobs(t *testing.T) {
	noScan := Generate(Params{Cores: 30, Seed: 1, ScanFraction: -1})
	for _, c := range noScan.Cores {
		if len(c.ScanChains) != 0 {
			t.Fatalf("ScanFraction=-1 still produced scan on core %d", c.ID)
		}
	}
	skewed := Generate(Params{Cores: 200, Seed: 1, PatternSkew: 4})
	uniform := Generate(Params{Cores: 200, Seed: 1})
	mean := func(s *itc02.SoC) float64 {
		total := 0
		for _, c := range s.Cores {
			total += c.Patterns
		}
		return float64(total) / float64(len(s.Cores))
	}
	if mean(skewed) >= mean(uniform) {
		t.Errorf("PatternSkew=4 mean %g not below uniform mean %g", mean(skewed), mean(uniform))
	}
	narrow := Generate(Params{Cores: 50, Seed: 1, PowerSpan: 1})
	for _, c := range narrow.Cores {
		if c.Power != 100 {
			t.Fatalf("PowerSpan=1 drew power %g on core %d", c.Power, c.ID)
		}
	}
}

// TestScenarioBuildsAndValidates draws scenarios across many seeds:
// every one must build into a valid placed system with the drawn shape.
func TestScenarioBuildsAndValidates(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		sc := NewScenario(seed, ScenarioParams{})
		sys, err := sc.Build()
		if err != nil {
			t.Fatalf("seed %d (%s): build: %v", seed, sc, err)
		}
		if err := sys.Validate(); err != nil {
			t.Fatalf("seed %d (%s): invalid system: %v", seed, sc, err)
		}
		if got := len(sys.Cores); got != len(sc.SoC.Cores)+sc.Processors {
			t.Errorf("seed %d: system has %d cores, want %d benchmark + %d processors",
				seed, got, len(sc.SoC.Cores), sc.Processors)
		}
		if got := len(sys.Processors()); got != sc.Processors {
			t.Errorf("seed %d: system has %d processors, want %d", seed, got, sc.Processors)
		}
		if w, h := sys.Net.Topo.Dims(); w != sc.Mesh.Width || h != sc.Mesh.Height {
			t.Errorf("seed %d: fabric %v, want %v", seed, sys.Net.Topo, sc.Mesh)
		}
	}
}

// TestScenarioDeterministic pins scenario draws to their seed.
func TestScenarioDeterministic(t *testing.T) {
	a := NewScenario(7, ScenarioParams{})
	b := NewScenario(7, ScenarioParams{})
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different scenarios")
	}
}

// TestScenarioEncodeParseRoundTrip serialises a scenario with note lines
// and reads it back: placement and SoC must survive, and the same file
// must parse as a plain itc02 description too.
func TestScenarioEncodeParseRoundTrip(t *testing.T) {
	sc := NewScenario(99, ScenarioParams{})
	var b strings.Builder
	if err := sc.Encode(&b, "written by a test", "oracle lower-bound"); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, "# written by a test") {
		t.Errorf("note line missing from encoding:\n%s", text)
	}
	again, err := ParseScenario(text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Errorf("round trip changed the scenario:\n got %+v\nwant %+v", again, sc)
	}
	plain, err := itc02.ParseString(text)
	if err != nil {
		t.Fatalf("encoded scenario is not a valid itc02 file: %v", err)
	}
	if !reflect.DeepEqual(plain, sc.SoC) {
		t.Error("plain itc02 parse of the scenario file differs from the SoC")
	}
}

// TestParseScenarioErrors covers malformed headers.
func TestParseScenarioErrors(t *testing.T) {
	soc := "soc x\ncore 1 a\n inputs 1\n outputs 1\n patterns 1\nend\n"
	for _, tc := range []struct{ name, text, want string }{
		{"missing", soc, "no \"# scenario\" header"},
		{"duplicate", "# scenario seed=1 mesh=2x2 procs=0\n# scenario seed=2 mesh=2x2 procs=0\n" + soc, "duplicate"},
		{"badtoken", "# scenario seed\n" + soc, "bad scenario token"},
		{"badvalue", "# scenario mesh=wide\n" + soc, "bad scenario value"},
		{"badkey", "# scenario turbo=1\n" + soc, "unknown scenario key"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestScenarioTopologyDraws covers the fabric distribution: forcing a
// kind pins every draw, degraded draws carry a failed-link count in
// [1, MaxFailedLinks], the unconstrained draw mixes all three kinds,
// and forcing a kind changes nothing else about the scenario.
func TestScenarioTopologyDraws(t *testing.T) {
	kinds := map[string]int{}
	for seed := int64(0); seed < 60; seed++ {
		sc := NewScenario(seed, ScenarioParams{})
		kinds[sc.Topology]++
		switch sc.Topology {
		case "mesh", "torus":
			if sc.FailedLinks != 0 {
				t.Errorf("seed %d: %s scenario has %d failed links", seed, sc.Topology, sc.FailedLinks)
			}
		case "degraded":
			if sc.FailedLinks < 1 || sc.FailedLinks > 3 {
				t.Errorf("seed %d: degraded failed-link draw %d outside [1,3]", seed, sc.FailedLinks)
			}
		default:
			t.Fatalf("seed %d: unknown kind %q", seed, sc.Topology)
		}

		forced := NewScenario(seed, ScenarioParams{Topology: "torus"})
		if forced.Topology != "torus" {
			t.Fatalf("seed %d: forced torus drew %q", seed, forced.Topology)
		}
		free := sc
		free.Topology, free.FailedLinks = forced.Topology, forced.FailedLinks
		if !reflect.DeepEqual(free, forced) {
			t.Errorf("seed %d: forcing the fabric changed other fields", seed)
		}
	}
	for _, kind := range []string{"mesh", "torus", "degraded"} {
		if kinds[kind] == 0 {
			t.Errorf("unconstrained draw never produced %s (got %v)", kind, kinds)
		}
	}
	if sc := NewScenario(1, ScenarioParams{MaxFailedLinks: -1, Topology: "degraded"}); sc.Topology != "mesh" {
		t.Errorf("degradation forbidden but drew %q", sc.Topology)
	}
}

// TestScenarioTopologyBuildAndRoundTrip checks torus and degraded
// scenarios build onto the right fabric and survive Encode/Parse,
// and that pre-topology scenario files still parse as plain meshes.
func TestScenarioTopologyBuildAndRoundTrip(t *testing.T) {
	for _, kind := range []string{"torus", "degraded"} {
		sc := NewScenario(13, ScenarioParams{Topology: kind})
		sys, err := sc.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := sys.Net.Topo.Kind(); got != kind {
			t.Errorf("%s scenario built %q fabric", kind, got)
		}
		var b strings.Builder
		if err := sc.Encode(&b); err != nil {
			t.Fatal(err)
		}
		again, err := ParseScenario(b.String())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sc, again) {
			t.Errorf("%s round trip changed the scenario:\n got %+v\nwant %+v", kind, again, sc)
		}
	}

	legacy := "# scenario seed=5 mesh=2x2 procs=0 profile=plasma extraports=0\n" +
		"soc x\ncore 1 a\n inputs 1\n outputs 1\n patterns 1\nend\n"
	sc, err := ParseScenario(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topology != "mesh" || sc.FailedLinks != 0 {
		t.Errorf("legacy header parsed as %q/%d, want mesh/0", sc.Topology, sc.FailedLinks)
	}

	if _, err := ParseScenario("# scenario topology=klein\n" +
		"soc x\ncore 1 a\n inputs 1\n outputs 1\n patterns 1\nend\n"); err == nil {
		t.Error("unknown topology kind accepted")
	}
}

// TestScenarioPreemptionDraws covers the preemption distribution:
// forcing a mode pins it without perturbing anything else, the mixed
// default produces both modes, preemptive draws stay in range, and the
// fields survive the Encode/Parse round trip while pre-preemption
// files parse as plain scenarios.
func TestScenarioPreemptionDraws(t *testing.T) {
	modes := map[bool]int{}
	for seed := int64(0); seed < 60; seed++ {
		sc := NewScenario(seed, ScenarioParams{})
		modes[sc.MaxSegments > 0]++
		if sc.MaxSegments != 0 && (sc.MaxSegments < 2 || sc.MaxSegments > 4) {
			t.Errorf("seed %d: segment cap %d outside {0, 2..4}", seed, sc.MaxSegments)
		}
		if sc.MaxSegments == 0 && sc.ResumeCost != 0 {
			t.Errorf("seed %d: plain scenario carries resume cost %d", seed, sc.ResumeCost)
		}
		if sc.ResumeCost%40 != 0 || sc.ResumeCost > 80 {
			t.Errorf("seed %d: resume cost %d outside {0, 40, 80}", seed, sc.ResumeCost)
		}

		plain := NewScenario(seed, ScenarioParams{Preemption: "plain"})
		if plain.MaxSegments != 0 || plain.ResumeCost != 0 {
			t.Errorf("seed %d: forced plain drew cap %d cost %d", seed, plain.MaxSegments, plain.ResumeCost)
		}
		pre := NewScenario(seed, ScenarioParams{Preemption: "preemptive"})
		if pre.MaxSegments < 2 {
			t.Errorf("seed %d: forced preemptive drew cap %d", seed, pre.MaxSegments)
		}
		// Forcing the mode leaves every other field alone.
		free := sc
		free.MaxSegments, free.ResumeCost = plain.MaxSegments, plain.ResumeCost
		if !reflect.DeepEqual(free, plain) {
			t.Errorf("seed %d: forcing plain changed other fields", seed)
		}
		free.MaxSegments, free.ResumeCost = pre.MaxSegments, pre.ResumeCost
		if !reflect.DeepEqual(free, pre) {
			t.Errorf("seed %d: forcing preemptive changed other fields", seed)
		}
	}
	if modes[false] == 0 || modes[true] == 0 {
		t.Errorf("mixed draw never produced both modes: %v", modes)
	}

	sc := NewScenario(7, ScenarioParams{Preemption: "preemptive"})
	var b strings.Builder
	if err := sc.Encode(&b); err != nil {
		t.Fatal(err)
	}
	again, err := ParseScenario(b.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, again) {
		t.Errorf("preemptive round trip changed the scenario:\n got %+v\nwant %+v", again, sc)
	}

	legacy := "# scenario seed=5 mesh=2x2 procs=0 profile=plasma extraports=0 topology=torus failedlinks=0\n" +
		"soc x\ncore 1 a\n inputs 1\n outputs 1\n patterns 1\nend\n"
	old, err := ParseScenario(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if old.MaxSegments != 0 || old.ResumeCost != 0 {
		t.Errorf("pre-preemption header parsed as cap %d cost %d, want 0/0", old.MaxSegments, old.ResumeCost)
	}
}
