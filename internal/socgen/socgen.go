// Package socgen generates random-but-valid SoC descriptions and fully
// placed test scenarios, for stress-testing the planner, the parser and
// the verification sweep with systems beyond the embedded benchmarks.
//
// The package has two layers. Generate draws one itc02 SoC from
// parameterized distributions (core count, functional I/O width, pattern
// count with optional skew, power spread, scan population). NewScenario
// draws a complete scenario on top of it: the SoC plus the mesh shape,
// the number of embedded processor instances, the processor class and
// the tester port count — everything soc.Build needs. Both are
// deterministic for a fixed seed, so any generated system is
// reproducible from its seed alone, and a scenario can additionally be
// serialised to (and re-read from) a single itc02-format file whose
// header comments carry the placement parameters; see Encode and
// ParseScenario. The verification sweep (internal/verify) writes shrunk
// failure reproductions in exactly that format.
package socgen

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"noctest/internal/itc02"
	"noctest/internal/noc"
	"noctest/internal/soc"
)

// Params parameterises the per-SoC distributions. The zero value (plus
// Cores and Seed) reproduces the historical socgen command: cores with
// 10-259 functional pins per side, 10-609 patterns drawn uniformly,
// power drawn uniformly from [100, 1300), and two thirds of the cores
// carrying 1-24 scan chains totalling 100-8100 flip-flops.
type Params struct {
	// Cores is the number of cores; zero selects 16.
	Cores int
	// Seed drives every draw.
	Seed int64
	// Name is the soc name; empty selects "genC-S" from Cores and Seed.
	Name string
	// MaxIO bounds the functional input and output counts (exclusive,
	// added to a floor of 10); values below 1 select 250.
	MaxIO int
	// MaxPatterns bounds the pattern count (exclusive, added to a floor
	// of 10); values below 1 select 600.
	MaxPatterns int
	// PatternSkew, when positive, replaces the uniform pattern draw with
	// MaxPatterns * U^skew: values above 1 make most cores small with a
	// heavy tail of pattern-rich cores, the shape that separates
	// critical-core-bound scenarios from capacity-bound ones.
	PatternSkew float64
	// PowerSpan is the width of the uniform power draw above the floor
	// of 100 units; values below 1 select 1200. Narrow spans make the
	// paper's fractional power ceilings bind uniformly, wide spans
	// concentrate the ceiling on a few hot cores.
	PowerSpan int
	// ScanFraction is the probability a core carries internal scan; zero
	// selects 2/3 (the benchmarks' shape), negative disables scan.
	ScanFraction float64
	// MaxScanChains bounds the scan chain count per scanned core
	// (exclusive, added to a floor of 1); values below 1 select 24.
	MaxScanChains int
	// MaxScanBits bounds the total scan length per scanned core
	// (exclusive, added to a floor of 100); values below 1 select 8000.
	MaxScanBits int
}

// defaultScanFraction is the benchmarks' scan population: two thirds of
// the cores, drawn with the historical command's Intn(3) gate.
const defaultScanFraction = 2.0 / 3.0

func (p Params) withDefaults() Params {
	if p.Cores == 0 {
		p.Cores = 16
	}
	if p.Name == "" {
		p.Name = fmt.Sprintf("gen%d-%d", p.Cores, p.Seed)
	}
	if p.MaxIO < 1 {
		p.MaxIO = 250
	}
	if p.MaxPatterns < 1 {
		p.MaxPatterns = 600
	}
	if p.PowerSpan < 1 {
		p.PowerSpan = 1200
	}
	if p.ScanFraction == 0 {
		p.ScanFraction = defaultScanFraction
	}
	if p.MaxScanChains < 1 {
		p.MaxScanChains = 24
	}
	if p.MaxScanBits < 1 {
		p.MaxScanBits = 8000
	}
	return p
}

// Generate draws one SoC from the distributions. The result always
// passes itc02 validation and survives the canonical write/parse round
// trip; it panics only on a non-positive core count, which is a caller
// bug rather than a draw outcome.
func Generate(p Params) *itc02.SoC {
	p = p.withDefaults()
	if p.Cores < 1 {
		panic(fmt.Sprintf("socgen: need at least 1 core, got %d", p.Cores))
	}
	r := rand.New(rand.NewSource(p.Seed))
	s := &itc02.SoC{Name: p.Name}
	for i := 1; i <= p.Cores; i++ {
		// The draw order (inputs, outputs, patterns, power, scan) is the
		// historical socgen command's; keeping it preserves every SoC
		// ever shared as a (cores, seed) pair under default parameters.
		c := itc02.Core{
			ID:      i,
			Name:    fmt.Sprintf("mod%02d", i),
			Inputs:  10 + r.Intn(p.MaxIO),
			Outputs: 10 + r.Intn(p.MaxIO),
		}
		if p.PatternSkew > 0 {
			c.Patterns = 10 + int(float64(p.MaxPatterns)*math.Pow(r.Float64(), p.PatternSkew))
		} else {
			c.Patterns = 10 + r.Intn(p.MaxPatterns)
		}
		c.Power = float64(100 + r.Intn(p.PowerSpan))
		scan := false
		switch {
		case p.ScanFraction == defaultScanFraction:
			// The historical command gated scan on Intn(3) > 0; drawing
			// the same stream element keeps default output bit-identical.
			scan = r.Intn(3) > 0
		case p.ScanFraction > 0:
			scan = r.Float64() < p.ScanFraction
		}
		if scan {
			chains := 1 + r.Intn(p.MaxScanChains)
			total := 100 + r.Intn(p.MaxScanBits)
			for j := 0; j < chains; j++ {
				c.ScanChains = append(c.ScanChains, total/chains+1)
			}
		}
		s.Cores = append(s.Cores, c)
	}
	return s
}

// ScenarioParams parameterises scenario generation: the SoC
// distributions plus the placement space.
type ScenarioParams struct {
	// MinCores and MaxCores bound the uniform core-count draw; zero
	// selects 4 and 24.
	MinCores, MaxCores int
	// MaxProcessors bounds the processor-instance draw (inclusive, from
	// 0); zero selects 6, negative forbids processors entirely.
	MaxProcessors int
	// MaxExtraPortPairs bounds the extra tester port pairs beyond the
	// default corner pair (inclusive, from 0); zero selects 1, negative
	// keeps the single pair.
	MaxExtraPortPairs int
	// MeshSlack widens the mesh-side draw around the smallest square
	// that fits the cores; zero selects 2. Sides range over
	// [side-1, side+slack-1], floored at 2, so scenarios cover both
	// packed meshes (several cores per tile) and sparse ones.
	MeshSlack int
	// Topology forces every scenario onto one fabric kind ("mesh",
	// "torus" or "degraded"); empty draws uniformly over the three, so
	// an unconstrained sweep exercises every fabric. The verification
	// matrix runs one forced sweep per kind.
	Topology string
	// Preemption forces every scenario's scheduling mode: "plain"
	// scenarios never segment (MaxSegments 0), "preemptive" scenarios
	// always draw a segment cap, and the empty default mixes the two
	// uniformly so an unconstrained sweep exercises both engines. The
	// verification matrix runs one forced sweep per mode.
	Preemption string
	// MaxFailedLinks bounds the failed-channel draw of degraded
	// fabrics (inclusive, from 1); zero selects 3, negative forbids
	// degradation (degraded draws fall back to mesh).
	MaxFailedLinks int
	// SoC carries the per-core distributions; Cores, Seed and Name are
	// overridden per scenario.
	SoC Params
}

func (p ScenarioParams) withDefaults() ScenarioParams {
	if p.MinCores == 0 {
		p.MinCores = 4
	}
	if p.MaxCores == 0 {
		p.MaxCores = 24
	}
	if p.MaxCores < p.MinCores {
		p.MaxCores = p.MinCores
	}
	if p.MaxProcessors == 0 {
		p.MaxProcessors = 6
	}
	if p.MaxExtraPortPairs == 0 {
		p.MaxExtraPortPairs = 1
	}
	if p.MeshSlack == 0 {
		p.MeshSlack = 2
	}
	if p.MaxFailedLinks == 0 {
		p.MaxFailedLinks = 3
	}
	return p
}

// Scenario is one complete randomized verification scenario: a SoC plus
// everything soc.Build needs to place it.
type Scenario struct {
	// Seed is the draw that produced the scenario (informational once
	// the scenario is materialised or shrunk).
	Seed int64
	// SoC is the benchmark description.
	SoC *itc02.SoC
	// Mesh is the NoC grid; it may hold fewer tiles than cores (tiles
	// are then shared, as the paper's large systems do).
	Mesh noc.Mesh
	// Processors is the number of embedded processor instances appended
	// to the SoC's cores.
	Processors int
	// Profile names the processor class ("leon" or "plasma"); ignored
	// when Processors is zero.
	Profile string
	// ExtraPortPairs is the number of tester port pairs beyond the
	// default corner pair.
	ExtraPortPairs int
	// Topology is the fabric kind the system is placed on: "mesh"
	// (default, the paper's fabric), "torus", or "degraded" (a mesh
	// with FailedLinks failed channels).
	Topology string
	// FailedLinks is the failed-channel count of a degraded fabric;
	// the channels themselves are sampled deterministically from Seed
	// (soc.Build via noc.SampleFailedLinks), so the count plus the seed
	// reproduce the exact fabric.
	FailedLinks int
	// MaxSegments is the preemptive segment cap the scenario schedules
	// under (core.Options.MaxSegments); zero keeps the classic atomic
	// engine.
	MaxSegments int
	// ResumeCost is the per-resumption re-setup cost in cycles
	// (core.Options.ResumeCycles); meaningful only when MaxSegments
	// allows splitting.
	ResumeCost int
}

// topologyKinds is the uniform fabric draw of unconstrained sweeps.
var topologyKinds = []string{"mesh", "torus", "degraded"}

// NewScenario draws a scenario deterministically from seed.
func NewScenario(seed int64, p ScenarioParams) Scenario {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(seed))
	cores := p.MinCores + r.Intn(p.MaxCores-p.MinCores+1)
	procs := 0
	if p.MaxProcessors > 0 {
		procs = r.Intn(p.MaxProcessors + 1)
	}
	profile := "leon"
	if r.Intn(2) == 1 {
		profile = "plasma"
	}
	side := 2
	for side*side < cores+procs {
		side++
	}
	w := maxInt(2, side-1+r.Intn(p.MeshSlack+1))
	h := maxInt(2, side-1+r.Intn(p.MeshSlack+1))
	extra := 0
	if p.MaxExtraPortPairs > 0 && w >= 3 && h >= 3 {
		extra = r.Intn(p.MaxExtraPortPairs + 1)
	}
	sp := p.SoC
	sp.Cores = cores
	sp.Seed = r.Int63()
	sp.Name = fmt.Sprintf("sweep%d", seed)
	// The topology draws come last so every earlier field keeps its
	// historical value for a given seed; forcing a kind leaves the rest
	// of the scenario untouched, which is what lets the verification
	// matrix compare fabrics on otherwise-identical systems.
	kind := p.Topology
	if kind == "" {
		kind = topologyKinds[r.Intn(len(topologyKinds))]
	}
	failed := 0
	if kind == "degraded" {
		if p.MaxFailedLinks > 0 {
			failed = 1 + r.Intn(p.MaxFailedLinks)
		} else {
			kind = "mesh"
		}
	}
	// The preemption draws use their own seed-derived stream: forcing a
	// mode changes nothing else about the scenario, and forcing a
	// topology (which consumes a different number of main-stream draws)
	// changes nothing about the preemption fields.
	pr := rand.New(rand.NewSource(seed ^ 0x9e6d))
	gate := pr.Intn(2)
	segCap := 2 + pr.Intn(3)
	resume := 40 * pr.Intn(3)
	switch p.Preemption {
	case "plain":
		segCap = 0
	case "preemptive":
		// keep the drawn cap
	default:
		if gate == 0 {
			segCap = 0
		}
	}
	if segCap == 0 {
		resume = 0
	}
	return Scenario{
		Seed:           seed,
		SoC:            Generate(sp),
		Mesh:           noc.Mesh{Width: w, Height: h},
		Processors:     procs,
		Profile:        profile,
		ExtraPortPairs: extra,
		Topology:       kind,
		FailedLinks:    failed,
		MaxSegments:    segCap,
		ResumeCost:     resume,
	}
}

// WithTopology returns a copy of the scenario moved onto another
// fabric, leaving the SoC and placement untouched — the construction
// behind the sweep's cross-fabric regimes and identity oracles.
func (sc Scenario) WithTopology(kind string, failedLinks int) Scenario {
	sc.Topology = kind
	sc.FailedLinks = failedLinks
	return sc
}

// Build places the scenario into a validated system.
func (sc Scenario) Build() (*soc.System, error) {
	kind := sc.Topology
	if kind == "degraded" {
		// A degraded scenario is a mesh with failed channels; the kind
		// token exists so scenario files read naturally.
		kind = "mesh"
	}
	cfg := soc.BuildConfig{
		Mesh:            sc.Mesh,
		Processors:      sc.Processors,
		ExtraPortPairs:  sc.ExtraPortPairs,
		Topology:        kind,
		FailedLinkCount: sc.FailedLinks,
		FailedLinkSeed:  sc.Seed,
	}
	if sc.Processors > 0 {
		profile, err := soc.ProfileByName(sc.Profile)
		if err != nil {
			return nil, err
		}
		cfg.Profile = profile
	}
	return soc.Build(sc.SoC, cfg)
}

// BuildOn places the scenario on an explicit prebuilt fabric instead
// of the one its Topology/FailedLinks fields describe — the hook the
// verification sweep's identity oracles use to compare the mesh
// against its degenerate encodings (no-wrap torus, zero-failure
// degraded wrapper) on otherwise-identical systems.
func (sc Scenario) BuildOn(topo noc.Topology) (*soc.System, error) {
	cfg := soc.BuildConfig{
		Topo:           topo,
		Processors:     sc.Processors,
		ExtraPortPairs: sc.ExtraPortPairs,
	}
	if sc.Processors > 0 {
		profile, err := soc.ProfileByName(sc.Profile)
		if err != nil {
			return nil, err
		}
		cfg.Profile = profile
	}
	return soc.Build(sc.SoC, cfg)
}

// String summarises the scenario on one line.
func (sc Scenario) String() string {
	return fmt.Sprintf("seed=%d cores=%d mesh=%dx%d procs=%d profile=%s extraports=%d topology=%s failedlinks=%d preempt=%d resume-cost=%d",
		sc.Seed, len(sc.SoC.Cores), sc.Mesh.Width, sc.Mesh.Height,
		sc.Processors, sc.Profile, sc.ExtraPortPairs, sc.topologyOrDefault(), sc.FailedLinks,
		sc.MaxSegments, sc.ResumeCost)
}

// Encode writes the scenario as a single itc02-format file: the given
// note lines and the placement parameters as header comments, then the
// canonical SoC text. ParseScenario reads the result back; a plain
// itc02.Parse reads the same file as just the SoC.
func (sc Scenario) Encode(w io.Writer, notes ...string) error {
	for _, n := range notes {
		for _, line := range strings.Split(n, "\n") {
			if _, err := fmt.Fprintf(w, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# scenario seed=%d mesh=%dx%d procs=%d profile=%s extraports=%d topology=%s failedlinks=%d preempt=%d resume-cost=%d\n",
		sc.Seed, sc.Mesh.Width, sc.Mesh.Height, sc.Processors, sc.Profile, sc.ExtraPortPairs,
		sc.topologyOrDefault(), sc.FailedLinks, sc.MaxSegments, sc.ResumeCost); err != nil {
		return err
	}
	return itc02.Write(w, sc.SoC)
}

// topologyOrDefault normalises the empty kind to "mesh" for display
// and serialisation.
func (sc Scenario) topologyOrDefault() string {
	if sc.Topology == "" {
		return "mesh"
	}
	return sc.Topology
}

// ParseScenario reads a scenario file written by Encode: the "# scenario"
// header comment supplies the placement, the itc02 body supplies the
// SoC. Files written before the topology layer carry no topology/
// failedlinks tokens and parse as plain meshes; files written before
// the preemption layer carry no preempt/resume-cost tokens and parse
// as non-preemptive scenarios.
func ParseScenario(text string) (Scenario, error) {
	sc := Scenario{Profile: "leon", Topology: "mesh"}
	found := false
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "# scenario ") {
			continue
		}
		if found {
			return Scenario{}, fmt.Errorf("socgen: duplicate scenario header")
		}
		found = true
		for _, tok := range strings.Fields(strings.TrimPrefix(line, "# scenario ")) {
			key, val, ok := strings.Cut(tok, "=")
			if !ok {
				return Scenario{}, fmt.Errorf("socgen: bad scenario token %q", tok)
			}
			var err error
			switch key {
			case "seed":
				_, err = fmt.Sscanf(val, "%d", &sc.Seed)
			case "mesh":
				_, err = fmt.Sscanf(val, "%dx%d", &sc.Mesh.Width, &sc.Mesh.Height)
			case "procs":
				_, err = fmt.Sscanf(val, "%d", &sc.Processors)
			case "profile":
				sc.Profile = val
			case "extraports":
				_, err = fmt.Sscanf(val, "%d", &sc.ExtraPortPairs)
			case "topology":
				switch val {
				case "mesh", "torus", "degraded":
					sc.Topology = val
				default:
					err = fmt.Errorf("unknown topology kind %q", val)
				}
			case "failedlinks":
				_, err = fmt.Sscanf(val, "%d", &sc.FailedLinks)
			case "preempt":
				_, err = fmt.Sscanf(val, "%d", &sc.MaxSegments)
			case "resume-cost":
				_, err = fmt.Sscanf(val, "%d", &sc.ResumeCost)
			default:
				return Scenario{}, fmt.Errorf("socgen: unknown scenario key %q", key)
			}
			if err != nil {
				return Scenario{}, fmt.Errorf("socgen: bad scenario value %q: %v", tok, err)
			}
		}
	}
	if !found {
		return Scenario{}, fmt.Errorf("socgen: no \"# scenario\" header in input")
	}
	s, err := itc02.ParseString(text)
	if err != nil {
		return Scenario{}, err
	}
	sc.SoC = s
	return sc, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
