// Package replay cross-validates test plans against the cycle-accurate
// NoC simulator. The planner's model is circuit-like: a test's paths
// are set up once and its patterns stream continuously, so each test is
// replayed as one long wormhole stream per direction (stimulus towards
// the core, responses towards the sink) injected at the planned start.
// If the analytic model is sound, the wire-level completion of each
// test lands at or before the planned end — the planner additionally
// charges capture and software cycles the wire never sees.
//
// The replay also exposes a real limitation the analytic model glosses
// over: with a single virtual channel, two circuit-like streams sharing
// a link serialise (wormhole blocking) instead of interleaving, so only
// plans built with ExclusiveLinks are guaranteed to meet their windows
// on this wire; shared-link plans assume an interleaving transport
// (virtual channels or per-pattern packetisation with amortised
// headers). The tests record both behaviours.
//
// Replay is the repository's end-to-end integration check between the
// planner (internal/core), the analytic NoC model (internal/noc) and
// the simulator (internal/noc/sim).
package replay

import (
	"fmt"

	"noctest/internal/noc/sim"
	"noctest/internal/plan"
	"noctest/internal/soc"
)

// Config bounds the replay.
type Config struct {
	// MaxPatternsPerTest caps how many patterns of each test are
	// replayed; long tests are truncated to keep simulation tractable.
	// Zero selects 20.
	MaxPatternsPerTest int
	// CycleBudget aborts a stuck simulation; zero derives a generous
	// bound from the plan's makespan.
	CycleBudget int
}

func (c Config) withDefaults(p *plan.Plan) Config {
	if c.MaxPatternsPerTest == 0 {
		c.MaxPatternsPerTest = 20
	}
	if c.CycleBudget == 0 {
		c.CycleBudget = 10*p.Makespan() + 1_000_000
	}
	return c
}

// Result compares one test's planned window with its wire measurement.
type Result struct {
	CoreID int
	// PlannedStart and PlannedEnd delimit the reservation (PlannedEnd
	// recomputed for the replayed pattern count).
	PlannedStart, PlannedEnd int
	// ReplayedPatterns is the number of patterns actually driven.
	ReplayedPatterns int
	// MeasuredEnd is the delivery time of the test's last flit on the
	// simulated network.
	MeasuredEnd int
	// Packets is the number of packets injected for the test.
	Packets int
}

// Slack is the margin between plan and wire: positive means the wire
// finished early (expected — the simulator does not charge capture or
// software cycles).
func (r Result) Slack() int { return r.PlannedEnd - r.MeasuredEnd }

// Replay drives the plan's tests through the simulator and returns one
// result per entry, ordered as plan.ByStart.
func Replay(sys *soc.System, p *plan.Plan, cfg Config) ([]Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("replay: plan invalid: %w", err)
	}
	cfg = cfg.withDefaults(p)
	timing := sys.Net.Timing

	// The wormhole simulator models the paper's plain mesh only; other
	// fabrics (torus wrap channels, degraded detours) have no wire model
	// to replay against.
	mesh, routing, ok := sys.Net.MeshFabric()
	if !ok {
		return nil, fmt.Errorf("replay: fabric %s has no cycle-accurate wire model (mesh only)", sys.Net.Topo)
	}
	net, err := sim.New(sim.Config{
		Mesh:           mesh,
		Routing:        routing,
		RoutingLatency: timing.RoutingLatency,
		FlowLatency:    timing.FlowLatency,
	})
	if err != nil {
		return nil, err
	}

	type pending struct {
		result  Result
		packets []sim.PacketID
	}
	var tests []*pending

	for _, e := range p.ByStart() {
		src := e.PathIn[0]
		core := e.PathIn[len(e.PathIn)-1]
		dst := e.PathOut[len(e.PathOut)-1]
		pc, ok := sys.CoreByID(e.CoreID)
		if !ok {
			return nil, fmt.Errorf("replay: plan entry for unknown core %d", e.CoreID)
		}
		inFlits := timing.Flits(pc.Core.StimulusBits())
		outFlits := timing.Flits(pc.Core.ResponseBits())

		patterns := e.Patterns
		if patterns > cfg.MaxPatternsPerTest {
			patterns = cfg.MaxPatternsPerTest
		}
		pend := &pending{result: Result{
			CoreID:           e.CoreID,
			PlannedStart:     e.Start,
			PlannedEnd:       e.Start + e.Setup + patterns*e.PerPattern,
			ReplayedPatterns: patterns,
		}}
		// One continuous stream per direction, as the circuit-like
		// model assumes; zero-hop legs (interface and core on one tile)
		// need no traffic.
		if src != core && inFlits > 0 {
			id, err := net.Inject(src, core, patterns*inFlits-1, e.Start)
			if err != nil {
				return nil, err
			}
			pend.packets = append(pend.packets, id)
		}
		if core != dst && outFlits > 0 {
			id, err := net.Inject(core, dst, patterns*outFlits-1, e.Start)
			if err != nil {
				return nil, err
			}
			pend.packets = append(pend.packets, id)
		}
		pend.result.Packets = len(pend.packets)
		tests = append(tests, pend)
	}

	if err := net.RunUntilDelivered(cfg.CycleBudget); err != nil {
		return nil, fmt.Errorf("replay: simulation did not drain: %w", err)
	}

	results := make([]Result, 0, len(tests))
	for _, pend := range tests {
		for _, id := range pend.packets {
			d, ok := net.Delivery(id)
			if !ok {
				return nil, fmt.Errorf("replay: packet %d of core %d not delivered", id, pend.result.CoreID)
			}
			if d.Delivered > pend.result.MeasuredEnd {
				pend.result.MeasuredEnd = d.Delivered
			}
		}
		if pend.result.MeasuredEnd == 0 {
			// Zero-hop test: nothing crossed the wire; the planned
			// window stands by construction.
			pend.result.MeasuredEnd = pend.result.PlannedEnd
		}
		results = append(results, pend.result)
	}
	return results, nil
}

// Verify replays the plan and reports the first test whose wire-level
// completion overruns its planned window by more than the allowed
// slack (in cycles). It returns the worst (most negative) observed
// slack.
func Verify(sys *soc.System, p *plan.Plan, cfg Config, allowedOverrun int) (worst int, err error) {
	results, err := Replay(sys, p, cfg)
	if err != nil {
		return 0, err
	}
	worst = 1 << 62
	for _, r := range results {
		if r.Slack() < worst {
			worst = r.Slack()
		}
		if r.Slack() < -allowedOverrun {
			return r.Slack(), fmt.Errorf("replay: core %d overran its window: planned end %d, measured %d (slack %d)",
				r.CoreID, r.PlannedEnd, r.MeasuredEnd, r.Slack())
		}
	}
	if len(results) == 0 {
		return 0, fmt.Errorf("replay: empty plan")
	}
	return worst, nil
}
