package replay

import (
	"testing"

	"noctest/internal/core"
	"noctest/internal/itc02"
	"noctest/internal/soc"
)

func TestReplaySerialPlanMeetsWindows(t *testing.T) {
	bench, err := itc02.Benchmark("d695")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soc.Build(bench, soc.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Schedule(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := Replay(sys, p, Config{MaxPatternsPerTest: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(p.Entries) {
		t.Fatalf("results = %d for %d entries", len(results), len(p.Entries))
	}
	for _, r := range results {
		if r.ReplayedPatterns == 0 || r.Packets == 0 {
			t.Errorf("core %d: nothing replayed (%+v)", r.CoreID, r)
		}
		// Serial plan: each test has the mesh to itself, so the wire
		// must finish within its window (the planner additionally
		// charges capture cycles the wire does not see).
		if r.Slack() < 0 {
			t.Errorf("core %d overran: slack %d (planned end %d, measured %d)",
				r.CoreID, r.Slack(), r.PlannedEnd, r.MeasuredEnd)
		}
	}
}

func TestReplayConcurrentSharedLinksDocumented(t *testing.T) {
	bench, err := itc02.Benchmark("d695")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soc.Build(bench, soc.BuildConfig{Processors: 6, Profile: soc.Plasma()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Schedule(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shared-link plans assume an interleaving transport; on the
	// single-VC wormhole wire, circuit-like streams sharing a link
	// serialise instead, so overruns are possible and expected. The
	// replay must still complete and deliver every stream.
	results, err := Replay(sys, p, Config{MaxPatternsPerTest: 8})
	if err != nil {
		t.Fatal(err)
	}
	worst, overruns := 1<<62, 0
	for _, r := range results {
		if r.Slack() < worst {
			worst = r.Slack()
		}
		if r.Slack() < 0 {
			overruns++
		}
	}
	t.Logf("shared-link replay: %d/%d tests overran, worst slack %d cycles",
		overruns, len(results), worst)
}

func TestReplayExclusiveLinksNeverOverruns(t *testing.T) {
	bench, err := itc02.Benchmark("d695")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soc.Build(bench, soc.BuildConfig{Processors: 6, Profile: soc.Plasma()})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Schedule(sys, core.Options{ExclusiveLinks: true})
	if err != nil {
		t.Fatal(err)
	}
	// With exclusive link reservation concurrent streams cannot collide
	// on the mesh... except at a shared destination NI, whose single
	// ejection port is not a reserved resource; allow a small grace.
	if _, err := Verify(sys, p, Config{MaxPatternsPerTest: 8}, 64); err != nil {
		t.Errorf("exclusive-link plan overran on the wire: %v", err)
	}
}

func TestVerifyRejectsUndeliverablePlan(t *testing.T) {
	bench, err := itc02.Benchmark("d695")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := soc.Build(bench, soc.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Schedule(sys, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Starve the budget so the simulation cannot drain.
	if _, err := Replay(sys, p, Config{MaxPatternsPerTest: 5, CycleBudget: 3}); err == nil {
		t.Error("impossible cycle budget accepted")
	}
}
