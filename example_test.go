package noctest_test

import (
	"fmt"
	"log"

	"noctest"
)

// ExampleSchedule plans the test of the paper's d695-based system with
// six Leon processors reused under the 50% power ceiling.
func ExampleSchedule() {
	bench, err := noctest.LoadBenchmark("d695")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := noctest.BuildSystem(bench, noctest.BuildConfig{
		Processors: 6,
		Profile:    noctest.Leon(),
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := noctest.Schedule(sys, noctest.Options{PowerLimitFraction: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(p.Entries), "tests planned")
	fmt.Println(p.Makespan() > 0)
	// Output:
	// 16 tests planned
	// true
}

// ExampleSchedule_baseline contrasts the no-reuse configuration: the
// same system, but the processors only appear as cores under test.
func ExampleSchedule_baseline() {
	bench, _ := noctest.LoadBenchmark("d695")
	sys, _ := noctest.BuildSystem(bench, noctest.BuildConfig{
		Processors: 6,
		Profile:    noctest.Leon(),
	})
	baseline, _ := noctest.Schedule(sys, noctest.Options{DisableReuse: true})
	reused, _ := noctest.Schedule(sys, noctest.Options{})
	fmt.Println("reuse helps:", reused.Makespan() < baseline.Makespan())
	// Output:
	// reuse helps: true
}

// ExampleParseSoC feeds a custom design to the planner.
func ExampleParseSoC() {
	design := `
soc mini
core 1 dsp
  inputs 16
  outputs 16
  scanchains 64 64
  patterns 100
  power 300
end
core 2 uart
  inputs 8
  outputs 8
  patterns 40
  power 50
end
`
	bench, err := noctest.ParseSoC(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.Name, len(bench.Cores))
	// Output:
	// mini 2
}

// ExampleLoadBenchmark lists the embedded ITC'02-derived systems.
func ExampleLoadBenchmark() {
	for _, name := range noctest.Benchmarks() {
		s, err := noctest.LoadBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(s.Name, len(s.Cores))
	}
	// Output:
	// d695 10
	// p22810 28
	// p93791 32
}
