// Package noctest is a test-planning library for network-on-chip based
// systems-on-chip, reproducing Amory et al., "Test Time Reduction
// Reusing Multiple Processors in a Network-on-Chip Based Architecture"
// (DATE 2005).
//
// The library plans the manufacturing test of a core-based SoC whose
// interconnect is a mesh NoC: test stimuli and responses travel through
// the network, the external tester attaches at I/O ports, and embedded
// processors — once they have passed their own test — are reused as
// additional test sources and sinks running a software BIST application.
// The planner assigns every core a test interface and a time window
// under interface, NoC-path and power constraints, minimising total test
// time with the paper's greedy heuristic.
//
// # Quick start
//
//	bench, _ := noctest.LoadBenchmark("d695")
//	sys, _ := noctest.BuildSystem(bench, noctest.BuildConfig{
//		Processors: 6,
//		Profile:    noctest.Leon(),
//	})
//	p, _ := noctest.Schedule(sys, noctest.Options{PowerLimitFraction: 0.5})
//	fmt.Println(p.Summary())
//	fmt.Print(p.Gantt(100))
//
// # Portfolio search
//
// Beyond the single-pass planner, ScheduleBest races a portfolio of
// scheduling strategies — the paper's greedy rule, the lookahead
// repair, critical-path and volume priority orderings, a seeded
// multi-start randomized-priority search and seeded simulated
// annealing — concurrently over a worker pool and returns the
// minimum-makespan plan with per-strategy statistics. The engine is
// split compile-once/search-many: the system is compiled once into an
// immutable Model (routes, dense link IDs, per-candidate timing and
// power) that every strategy and worker replays against pooled scratch
// state, so the search budget buys orders explored, not recompilation:
//
//	res, _ := noctest.ScheduleBest(ctx, sys, noctest.Options{PowerLimitFraction: 0.5})
//	fmt.Println(res.Best, res.Plan.Makespan())
//
// ScheduleAll batches many systems-times-options cells through the same
// engine, one portfolio run per cell, for sweep-style evaluations; the
// noctest command exposes both through -portfolio and -all. Every
// returned plan has passed Plan.Validate, and results are deterministic
// for a fixed seed regardless of worker interleaving.
//
// The facade re-exports the library's types from the internal packages;
// see the examples directory for complete programs and cmd/figure1 for
// the paper's full evaluation.
package noctest

import (
	"context"

	"noctest/internal/core"
	"noctest/internal/itc02"
	"noctest/internal/noc"
	"noctest/internal/plan"
	"noctest/internal/report"
	"noctest/internal/soc"
)

// Re-exported model types.
type (
	// SoC is a benchmark description: cores with their test knowledge.
	SoC = itc02.SoC
	// Core is one core's provider-supplied test record.
	Core = itc02.Core
	// System is a placed system: cores and processors on mesh tiles
	// plus tester ports.
	System = soc.System
	// BuildConfig controls system assembly.
	BuildConfig = soc.BuildConfig
	// ProcessorProfile characterises an embedded processor reused for
	// test.
	ProcessorProfile = soc.ProcessorProfile
	// Options configures the scheduler.
	Options = core.Options
	// Plan is a complete validated test schedule.
	Plan = plan.Plan
	// Entry is one scheduled core test.
	Entry = plan.Entry
	// Mesh is the NoC grid topology.
	Mesh = noc.Mesh
	// Topology is the pluggable NoC fabric abstraction: tiles, links,
	// dense link IDs and deterministic routing. BuildConfig.Topo accepts
	// any implementation; Mesh-backed fabrics, Torus and DegradedMesh
	// ship with the library.
	Topology = noc.Topology
	// Torus is the wrap-around fabric: rows and columns close into
	// rings and dimension-ordered routing takes the shorter direction.
	Torus = noc.Torus
	// DegradedMesh wraps any fabric with failed channels around which
	// routes detour deterministically, modelling partially self-tested
	// NoCs.
	DegradedMesh = noc.DegradedMesh
	// Coord addresses a mesh tile.
	Coord = noc.Coord
	// Link is a directed channel between two adjacent routers; pass
	// Links to BuildConfig.FailedLinks or NewDegradedMesh to fail
	// specific channels.
	Link = noc.Link
	// Timing is the NoC router characterisation.
	Timing = noc.Timing
	// Model is the precompiled, immutable scheduling model of one
	// (system, options) pair; see Compile. Portfolio strategies replay
	// it thousands of times without recompiling routes or candidates.
	Model = core.Model
	// Scheduler is one pluggable scheduling strategy over a compiled
	// Model.
	Scheduler = core.Scheduler
	// Portfolio races a scheduler set over a worker pool.
	Portfolio = core.Portfolio
	// PortfolioResult is a ScheduleBest outcome: the winning plan plus
	// per-strategy statistics.
	PortfolioResult = core.PortfolioResult
	// VariantResult is one strategy's outcome within a portfolio run.
	VariantResult = core.VariantResult
	// BatchJob is one system-plus-options cell of a ScheduleAll run.
	BatchJob = core.BatchJob
	// BatchResult is one ScheduleAll cell's outcome.
	BatchResult = core.BatchResult
	// ListScheduler is the deterministic single-pass list scheduler.
	ListScheduler = core.ListScheduler
	// RandomRestartScheduler is the seeded multi-start random search.
	RandomRestartScheduler = core.RandomRestartScheduler
	// AnnealingScheduler is the seeded simulated-annealing search.
	AnnealingScheduler = core.AnnealingScheduler
)

// Scheduler variant, priority and application constants, re-exported.
const (
	GreedyFirstAvailable   = core.GreedyFirstAvailable
	LookaheadFastestFinish = core.LookaheadFastestFinish
	ProcessorsFirst        = core.ProcessorsFirst
	DistanceOnly           = core.DistanceOnly
	VolumeDescending       = core.VolumeDescending
	// LongestTestFirst is the critical-path ordering: longest standalone
	// test first.
	LongestTestFirst = core.LongestTestFirst
	BISTApplication  = core.BISTApplication
	// DecompressionApplication selects the software-decompression test
	// application the paper lists as upcoming work (see internal/tdc).
	DecompressionApplication = core.DecompressionApplication
)

// LoadBenchmark returns a copy of an embedded benchmark: "d695",
// "p22810" or "p93791".
func LoadBenchmark(name string) (*SoC, error) { return itc02.Benchmark(name) }

// Benchmarks lists the embedded benchmark names.
func Benchmarks() []string { return itc02.BenchmarkNames() }

// ParseSoC reads a benchmark description in the itc02 text format.
func ParseSoC(text string) (*SoC, error) { return itc02.ParseString(text) }

// Leon returns the SPARC V8 processor profile evaluated in the paper.
func Leon() ProcessorProfile { return soc.Leon() }

// Plasma returns the MIPS-I processor profile evaluated in the paper.
func Plasma() ProcessorProfile { return soc.Plasma() }

// BuildSystem places a benchmark plus processors on a NoC fabric: the
// paper's mesh by default, or a torus / degraded fabric via
// BuildConfig.Topology, FailedLinks and Topo.
func BuildSystem(bench *SoC, cfg BuildConfig) (*System, error) { return soc.Build(bench, cfg) }

// NewDegradedMesh wraps a fabric with failed channels; see noc.DegradedMesh.
func NewDegradedMesh(inner Topology, failed []Link) (*DegradedMesh, error) {
	return noc.NewDegradedMesh(inner, failed)
}

// SampleFailedLinks deterministically picks up to n failed channels of
// a fabric without disconnecting it; see noc.SampleFailedLinks.
func SampleFailedLinks(t Topology, n int, seed int64) []Link {
	return noc.SampleFailedLinks(t, n, seed)
}

// Schedule plans the complete test of a system and returns a validated
// plan: one compile, one list-scheduling pass.
func Schedule(sys *System, opts Options) (*Plan, error) { return core.Schedule(sys, opts) }

// Compile builds the immutable scheduling model of sys under opts — the
// compile-once half of the engine. Drive it with a Portfolio
// (ScheduleModel) or a custom Scheduler when running many searches over
// one configuration.
func Compile(sys *System, opts Options) (*Model, error) { return core.Compile(sys, opts) }

// ScheduleBest races the default scheduler portfolio concurrently and
// returns the minimum-makespan plan with per-strategy statistics.
func ScheduleBest(ctx context.Context, sys *System, opts Options) (*PortfolioResult, error) {
	return core.ScheduleBest(ctx, sys, opts)
}

// ScheduleAll schedules every job concurrently with the default
// portfolio, one result per job in job order.
func ScheduleAll(ctx context.Context, jobs []BatchJob) []BatchResult {
	return core.ScheduleAll(ctx, jobs)
}

// DefaultPortfolio returns the standard scheduler set ScheduleBest
// races, seeded for its randomized members.
func DefaultPortfolio(seed int64) []Scheduler { return core.DefaultPortfolio(seed) }

// Figure1Panel is one reproduced chart of the paper's Figure 1.
type Figure1Panel = report.Panel

// Figure1 reproduces the paper's six result charts with the repository
// calibration (see EXPERIMENTS.md).
func Figure1() ([]Figure1Panel, error) { return report.RunFigure1() }
